#include "check/report.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace transedge::check {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendFindingJson(std::ostringstream* out, const Finding& f) {
  *out << "{\"file\":\"" << JsonEscape(f.file) << "\",\"line\":" << f.line
       << ",\"rule\":\"" << JsonEscape(f.rule) << "\",\"message\":\""
       << JsonEscape(f.message) << "\"}";
}

}  // namespace

void Canonicalize(RunResult* result) {
  auto key = [](const Finding& f) {
    return std::tie(f.file, f.line, f.rule, f.message);
  };
  std::sort(result->findings.begin(), result->findings.end(),
            [&](const Finding& a, const Finding& b) { return key(a) < key(b); });
  std::sort(result->suppressed.begin(), result->suppressed.end(),
            [&](const RunResult::Suppressed& a,
                const RunResult::Suppressed& b) {
              return key(a.finding) < key(b.finding);
            });
}

std::string FormatText(const RunResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  return out.str();
}

std::string FormatJson(const RunResult& result) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"finding_count\": " << result.findings.size()
      << ",\n  \"suppressed_count\": " << result.suppressed.size()
      << ",\n  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    out << (i ? "," : "") << "\n    ";
    AppendFindingJson(&out, result.findings[i]);
  }
  out << (result.findings.empty() ? "" : "\n  ") << "],\n  \"suppressed\": [";
  for (size_t i = 0; i < result.suppressed.size(); ++i) {
    out << (i ? "," : "") << "\n    {\"finding\":";
    AppendFindingJson(&out, result.suppressed[i].finding);
    out << ",\"reason\":\"" << JsonEscape(result.suppressed[i].reason)
        << "\"}";
  }
  out << (result.suppressed.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

}  // namespace transedge::check
