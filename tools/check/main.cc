// transedge-check: repo-native static analysis.
//
// Three check families over src/ (see ARCHITECTURE.md §Static checks):
//   determinism lint  — unordered-container iteration, wall-clock and
//                       ambient-randomness calls
//   wire parity       — message.h fields vs. serialize.cc codec paths
//   layering          — the #include-graph contract
//
// Usage: transedge-check [--root DIR] [--json FILE]
// Exit status 1 when any unsuppressed finding exists.

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "check/check.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: transedge-check [--root DIR] [--json FILE]\n";
      return 2;
    }
  }

  using transedge::check::RunResult;
  RunResult result = transedge::check::RunChecksOnTree(root);

  std::cout << transedge::check::FormatText(result);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "transedge-check: cannot write " << json_path << "\n";
      return 2;
    }
    out << transedge::check::FormatJson(result);
  }

  std::map<std::string, int> by_rule;
  for (const auto& f : result.findings) ++by_rule[f.rule];
  std::cout << "transedge-check: " << result.files_scanned
            << " files scanned, " << result.findings.size() << " finding"
            << (result.findings.size() == 1 ? "" : "s") << ", "
            << result.suppressed.size() << " suppressed by check:allow\n";
  for (const auto& [rule, count] : by_rule) {
    std::cout << "  " << rule << ": " << count << "\n";
  }
  return result.findings.empty() ? 0 : 1;
}
