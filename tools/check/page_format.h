#ifndef TRANSEDGE_TOOLS_CHECK_PAGE_FORMAT_H_
#define TRANSEDGE_TOOLS_CHECK_PAGE_FORMAT_H_

#include <map>
#include <string>

#include "check/report.h"
#include "check/source.h"

namespace transedge::check {

/// Page-format parity checker (rule `page-format-parity`).
///
/// The wire-parity rule's twin for the on-disk format: parses every
/// struct in `src/storage/paged/format.h` that declares an `EncodeTo`
/// member (PageHeader, MetaSlot, WalRecordHeader, and any future record
/// type) and verifies each data field appears in both the
/// `X::EncodeTo(Encoder*)` and `X::DecodeFrom(Decoder*)` definitions in
/// `src/storage/paged/format.cc`. A field added to a header struct but
/// forgotten in either codec path — the drift that silently corrupts
/// files written by one build and read by another — fails the check in
/// either direction.
///
/// A field that intentionally never hits disk carries
/// `// check:allow(page-format-parity): <why>`; a whole struct that is
/// in-memory only carries the same annotation above its declaration.
void CheckPageFormat(const std::map<std::string, SourceFile>& files,
                     RunResult* result);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_PAGE_FORMAT_H_
