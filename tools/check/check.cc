#include "check/check.h"

#include <filesystem>

#include "check/determinism.h"
#include "check/layering.h"
#include "check/page_format.h"
#include "check/wire_parity.h"

namespace transedge::check {

namespace fs = std::filesystem;

std::map<std::string, SourceFile> LoadTree(const std::string& root) {
  std::map<std::string, SourceFile> files;
  fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::string rel =
        fs::relative(entry.path(), fs::path(root)).generic_string();
    SourceFile file;
    if (file.Load(entry.path().string(), rel)) {
      files.emplace(rel, std::move(file));
    }
  }
  return files;
}

RunResult RunChecks(const std::map<std::string, SourceFile>& files) {
  RunResult result;
  result.files_scanned = static_cast<int>(files.size());
  CheckDeterminism(files, &result);
  CheckWireParity(files, &result);
  CheckPageFormat(files, &result);
  CheckLayering(files, &result);
  Canonicalize(&result);
  return result;
}

RunResult RunChecksOnTree(const std::string& root) {
  return RunChecks(LoadTree(root));
}

}  // namespace transedge::check
