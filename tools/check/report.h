#ifndef TRANSEDGE_TOOLS_CHECK_REPORT_H_
#define TRANSEDGE_TOOLS_CHECK_REPORT_H_

#include <string>
#include <vector>

namespace transedge::check {

/// One checker finding. `file` is repo-relative, `line` 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// The outcome of a whole run: unsuppressed findings (these fail the
/// build) and the sites an in-source `check:allow` annotation justified
/// (kept for the report so exemptions stay visible).
struct RunResult {
  std::vector<Finding> findings;
  struct Suppressed {
    Finding finding;
    std::string reason;
  };
  std::vector<Suppressed> suppressed;
  int files_scanned = 0;

  void Add(Finding f) { findings.push_back(std::move(f)); }
  void AddSuppressed(Finding f, std::string reason) {
    suppressed.push_back(Suppressed{std::move(f), std::move(reason)});
  }
};

/// `file:line: rule-id: message` — one finding per line, the format
/// editors and CI log scrapers understand.
std::string FormatText(const RunResult& result);

/// Machine-readable report uploaded as a CI artifact.
std::string FormatJson(const RunResult& result);

/// Sorts findings by (file, line, rule) so output order never depends on
/// check execution order. The checker must hold itself to the
/// determinism bar it enforces.
void Canonicalize(RunResult* result);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_REPORT_H_
