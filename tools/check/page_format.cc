#include "check/page_format.h"

#include <cctype>
#include <set>
#include <vector>

namespace transedge::check {

namespace {

constexpr const char* kRule = "page-format-parity";

struct Field {
  std::string name;
  int line = 0;
};

struct RecordStruct {
  std::string name;
  int line = 0;  // Line of the `struct` keyword.
  std::vector<Field> fields;
};

/// Parses `struct X { fields...; void EncodeTo(...); ... };`
/// declarations, keeping only structs that declare an `EncodeTo` member
/// — those are the on-disk record types the parity contract covers.
std::vector<RecordStruct> ParseRecordStructs(const SourceFile& header) {
  std::vector<RecordStruct> out;
  const std::vector<Token>& toks = header.tokens();
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "struct") continue;
    RecordStruct rec;
    rec.name = toks[i + 1].text;
    rec.line = toks[i].line;

    // Skip to the opening brace; a `;` first means a forward declaration.
    size_t j = i + 2;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text == ";") continue;
    size_t body_start = ++j;
    int depth = 1;
    size_t body_end = body_start;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) {
        body_end = j;
        break;
      }
    }

    // Fields: depth-1 statements `Type name;` / `Type name = init;`.
    // Statements containing parens (the EncodeTo/DecodeFrom/operator==
    // members) are not data fields and are skipped.
    bool has_encode_to = false;
    std::vector<Token> stmt;
    depth = 1;
    for (size_t k = body_start; k < body_end; ++k) {
      if (toks[k].text == "{") ++depth;
      if (toks[k].text == "}") --depth;
      if (depth > 1) continue;
      if (toks[k].text == "EncodeTo") has_encode_to = true;
      if (toks[k].text == ";") {
        bool has_paren = false;
        size_t eq = stmt.size();
        for (size_t s = 0; s < stmt.size(); ++s) {
          if (stmt[s].text == "(") has_paren = true;
          if (stmt[s].text == "=" && eq == stmt.size()) eq = s;
        }
        if (!has_paren && !stmt.empty()) {
          // The declared name is the last identifier before `=`/`;`.
          for (size_t s = eq; s-- > 0;) {
            char c0 = stmt[s].text[0];
            if (std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_') {
              rec.fields.push_back(Field{stmt[s].text, stmt[s].line});
              break;
            }
          }
        }
        stmt.clear();
      } else {
        stmt.push_back(toks[k]);
      }
    }
    if (has_encode_to) out.push_back(std::move(rec));
    i = body_end;
  }
  return out;
}

/// Identifiers appearing in the body of `Name::<method>(...)`, or an
/// empty set and found=false when no such definition exists.
std::set<std::string> MethodBodyIdents(const SourceFile& impl,
                                       const std::string& name,
                                       const std::string& method,
                                       bool* found) {
  *found = false;
  const std::vector<Token>& toks = impl.tokens();
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != name || toks[i + 1].text != "::" ||
        toks[i + 2].text != method || toks[i + 3].text != "(") {
      continue;
    }
    // Skip to the body's opening brace (a declaration would hit `;`).
    size_t j = i + 4;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text == ";") continue;
    *found = true;
    std::set<std::string> idents;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) break;
      idents.insert(toks[j].text);
    }
    return idents;
  }
  return {};
}

void Report(const SourceFile& header, int line, std::string message,
            RunResult* result) {
  Finding f{header.rel_path(), line, kRule, std::move(message)};
  if (header.IsAllowed(kRule, line)) {
    std::string reason = "annotated";
    for (const AllowAnnotation& a : header.allows()) {
      if (a.rule == kRule && a.line <= line && line - a.line <= 8) {
        reason = a.reason;
      }
    }
    result->AddSuppressed(std::move(f), reason);
  } else {
    result->Add(std::move(f));
  }
}

}  // namespace

void CheckPageFormat(const std::map<std::string, SourceFile>& files,
                     RunResult* result) {
  auto header_it = files.find("src/storage/paged/format.h");
  auto impl_it = files.find("src/storage/paged/format.cc");
  if (header_it == files.end() || impl_it == files.end()) return;
  const SourceFile& header = header_it->second;
  const SourceFile& impl = impl_it->second;

  for (const RecordStruct& rec : ParseRecordStructs(header)) {
    // A struct annotated at its declaration never hits disk.
    if (header.IsAllowed(kRule, rec.line)) {
      Report(header, rec.line, rec.name + " exempt from page-format parity",
             result);
      continue;
    }
    bool has_enc = false;
    bool has_dec = false;
    std::set<std::string> enc =
        MethodBodyIdents(impl, rec.name, "EncodeTo", &has_enc);
    std::set<std::string> dec =
        MethodBodyIdents(impl, rec.name, "DecodeFrom", &has_dec);
    if (!has_enc) {
      Report(header, rec.line,
             rec.name + " has no " + rec.name +
                 "::EncodeTo(Encoder*) definition in storage/paged/format.cc",
             result);
    }
    if (!has_dec) {
      Report(header, rec.line,
             rec.name + " has no " + rec.name +
                 "::DecodeFrom(Decoder*) definition in "
                 "storage/paged/format.cc",
             result);
    }
    if (!has_enc || !has_dec) continue;

    for (const Field& field : rec.fields) {
      bool in_enc = enc.count(field.name) > 0;
      bool in_dec = dec.count(field.name) > 0;
      if (in_enc && in_dec) continue;
      std::string where = !in_enc && !in_dec
                              ? "missing from both EncodeTo and DecodeFrom"
                          : !in_enc ? "decoded but never encoded"
                                    : "encoded but never decoded";
      Report(header, field.line,
             "field '" + field.name + "' of " + rec.name + " is " + where +
                 " (storage/paged/format.cc)",
             result);
    }
  }
}

}  // namespace transedge::check
