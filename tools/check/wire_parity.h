#ifndef TRANSEDGE_TOOLS_CHECK_WIRE_PARITY_H_
#define TRANSEDGE_TOOLS_CHECK_WIRE_PARITY_H_

#include <map>
#include <string>

#include "check/report.h"
#include "check/source.h"

namespace transedge::check {

/// Wire-parity checker (rule `wire-parity`).
///
/// Parses every `struct XMsg : TypedMessage<...>` in
/// `src/wire/message.h` and verifies each field appears in both the
/// `EncodeBody(const XMsg&, ...)` function and the `Decode<XMsg>(...)`
/// lambda in `src/wire/serialize.cc`. A field added to a message but
/// forgotten in either codec path — the drift that silently truncates or
/// corrupts the wire image — fails the check in either direction.
///
/// Fields that intentionally never travel (simulation-only shortcuts)
/// carry `// check:allow(wire-parity): <why>`; a whole struct that never
/// crosses the wire carries the same annotation above its declaration.
void CheckWireParity(const std::map<std::string, SourceFile>& files,
                     RunResult* result);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_WIRE_PARITY_H_
