// Durability cost and recovery profile of the paged storage backend.
//
// Part 1 — write path: the same closed-loop write workload on one
// cluster under the in-memory engine and several paged configurations
// (fsync-per-batch vs group commit, checkpoint cadence). The WAL append
// + fsync sit on the decision critical path, so the simulated-time gap
// to the in-memory engine is exactly the durability tax; group commit
// amortizes the fsync share of it.
//
// Part 2 — recovery: clones of a running replica's disk are crash-stopped
// at increasing run lengths and recovered offline. With checkpoints
// disabled, WAL replay (and so restart time) grows with the log; with a
// periodic checkpoint the replay window — and the simulated recovery
// time, priced with the node's own I/O cost model — stays bounded.

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "storage/paged/paged_backend.h"
#include "storage/paged/sim_disk.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct WriteCase {
  const char* label;
  storage::StorageKind storage;
  uint32_t wal_group_commit;
  uint32_t checkpoint_interval;
};

struct WritePoint {
  double write_tps = 0;
  double decided_per_sec = 0;
  double wal_syncs = 0;
  double checkpoints = 0;
  double pages_written = 0;
};

BenchSetup DurabilitySetup(uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.consensus_kind = core::ConsensusKind::kLinearVote;
  setup.config.num_partitions = 1;  // Durability is per-replica.
  setup.config.f = 2;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;
  return setup;
}

WritePoint RunWriteCase(const WriteCase& c, uint64_t seed, sim::Time measure,
                        bool smoke) {
  BenchSetup setup = DurabilitySetup(seed);
  setup.config.storage_kind = c.storage;
  setup.config.durability.wal_group_commit = c.wal_group_commit;
  setup.config.durability.checkpoint_interval = c.checkpoint_interval;
  World world(setup, /*preload=*/false);

  int clients = smoke ? 40 : 100;
  int concurrency = static_cast<int>(setup.config.max_batch_size / 50);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&](Rng* rng) { return world.plans->MakeWriteOnly(3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x7e, concurrency);

  const sim::Time t0 = sim::Millis(500);
  const sim::Time t1 = t0 + measure;
  runner.Start(t0, t1);

  uint64_t decided_at_t0 = 0, decided_at_t1 = 0;
  storage::StorageIoStats io_at_t0, io_at_t1;
  const core::TransEdgeNode* leader = world.system->node(0, 0);
  sim::Environment& env = world.system->env();
  env.Schedule(t0 - env.now(), [&] {
    decided_at_t0 = leader->stats().batches_decided;
    io_at_t0 = leader->backend().io_stats();
  });
  env.Schedule(t1 - env.now(), [&] {
    decided_at_t1 = leader->stats().batches_decided;
    io_at_t1 = leader->backend().io_stats();
  });
  runner.RunToCompletion(smoke ? sim::Millis(800) : sim::Millis(1200));

  WritePoint point;
  point.write_tps = runner.ThroughputTps();
  const double secs = static_cast<double>(measure) / 1e6;
  point.decided_per_sec =
      static_cast<double>(decided_at_t1 - decided_at_t0) / secs;
  point.wal_syncs =
      static_cast<double>(io_at_t1.wal_syncs - io_at_t0.wal_syncs);
  point.checkpoints =
      static_cast<double>(io_at_t1.checkpoints - io_at_t0.checkpoints);
  point.pages_written =
      static_cast<double>(io_at_t1.pages_written - io_at_t0.pages_written);
  return point;
}

struct RecoveryPoint {
  double log_len = 0;             // Batches the recovered log holds.
  double replayed = 0;            // WAL records re-decoded.
  double reapply_window = 0;      // Batches past the checkpoint.
  double reapplied_txns = 0;      // Transactions re-executed from those.
  double pages_read = 0;          // Checkpoint pages loaded.
  double recovery_ms = 0;         // Simulated, via the node's cost model.
};

/// Runs one paged deployment and recovers disk clones of replica (0,1)
/// at each of `sample_times`, offline. Returns one point per sample.
std::vector<RecoveryPoint> RunRecoverySweep(uint32_t checkpoint_interval,
                                            uint64_t seed,
                                            std::vector<sim::Time> samples,
                                            bool smoke) {
  BenchSetup setup = DurabilitySetup(seed);
  setup.config.storage_kind = storage::StorageKind::kPaged;
  setup.config.durability.checkpoint_interval = checkpoint_interval;
  // Recovery needs a formatted disk: the preload handoff writes the base
  // checkpoint (genesis meta) that every later Recover starts from.
  setup.workload.num_keys = 20000;
  World world(setup, /*preload=*/true);

  int clients = smoke ? 40 : 100;
  int concurrency = static_cast<int>(setup.config.max_batch_size / 50);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&](Rng* rng) { return world.plans->MakeWriteOnly(3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x7e, concurrency);
  const sim::Time t_end = samples.back() + sim::Millis(100);
  runner.Start(sim::Millis(500), t_end);

  storage::StorageTuning tuning = setup.config.durability;
  tuning.num_partitions = setup.config.num_partitions;
  tuning.partition = 0;
  const crypto::NodeId replica = setup.config.ReplicaNode(0, 1);
  const core::CostModel& cost = setup.config.cost;

  std::vector<RecoveryPoint> points;
  for (sim::Time at : samples) {
    world.system->env().RunUntil(at);
    storage::paged::SimDisk crashed = world.system->disk(replica)->Clone();
    crashed.Crash(crashed.op_count(), storage::paged::SimDisk::CrashMode::kNone);
    storage::paged::PagedBackend recovered(tuning, &crashed);
    Result<storage::RecoveredState> rec = recovered.Recover({});
    RecoveryPoint point;
    if (rec.ok()) {
      const storage::StorageIoStats& io = recovered.io_stats();
      point.log_len = static_cast<double>(recovered.log().LastBatchId() -
                                          recovered.log().FirstBatchId() + 1);
      point.replayed = static_cast<double>(io.wal_records_replayed);
      point.pages_read = static_cast<double>(io.pages_read);
      // The WAL rebuilds the whole retained log either way; what the
      // checkpoint bounds is the store re-apply window behind the tail.
      const BatchId tail = recovered.log().LastBatchId();
      uint64_t reapplied_txns = 0;
      for (BatchId id = rec->checkpoint_applied + 1; id <= tail; ++id) {
        Result<const storage::LogEntry*> entry = recovered.log().Get(id);
        if (!entry.ok()) continue;
        const storage::Batch& b = entry.value()->batch;
        reapplied_txns += b.local.size() + b.prepared.size();
      }
      point.reapply_window = static_cast<double>(tail - rec->checkpoint_applied);
      point.reapplied_txns = static_cast<double>(reapplied_txns);
      // Price the restart with the node's I/O cost model: page reads for
      // the checkpoint, wal_read per replayed record, and apply cost for
      // the re-apply window.
      sim::Time t = static_cast<sim::Time>(io.pages_read) * cost.page_read +
                    static_cast<sim::Time>(io.wal_records_replayed) *
                        cost.wal_read +
                    static_cast<sim::Time>(reapplied_txns) *
                        cost.apply_per_txn;
      point.recovery_ms = static_cast<double>(t) / 1e3;
    }
    points.push_back(point);
  }
  runner.RunToCompletion(sim::Millis(800));
  return points;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const sim::Time measure = smoke ? sim::Millis(1000) : sim::Millis(1500);

  const WriteCase cases[] = {
      {"in_memory", storage::StorageKind::kInMemory, 1, 64},
      {"paged_sync_each", storage::StorageKind::kPaged, 1, 64},
      {"paged_group8", storage::StorageKind::kPaged, 8, 64},
      {"paged_group8_ckpt16", storage::StorageKind::kPaged, 8, 16},
  };

  std::vector<sim::Time> samples;
  const int sample_count = smoke ? 3 : 6;
  for (int i = 1; i <= sample_count; ++i) {
    samples.push_back(sim::Millis(500) + sim::Millis(1000) * i);
  }

  if (smoke) {
    std::printf("{\"bench\":\"durability\",\"smoke\":true,\"write\":[");
    bool first = true;
    for (const WriteCase& c : cases) {
      WritePoint p = RunWriteCase(c, 42, measure, smoke);
      std::printf(
          "%s{\"config\":\"%s\",\"wal_group_commit\":%u,"
          "\"checkpoint_interval\":%u,\"write_tps\":%.0f,"
          "\"decided_batches_per_sec\":%.1f,\"wal_syncs\":%.1f,"
          "\"checkpoints\":%.1f,\"pages_written\":%.1f}",
          first ? "" : ",", c.label, c.wal_group_commit, c.checkpoint_interval,
          p.write_tps, p.decided_per_sec, p.wal_syncs, p.checkpoints,
          p.pages_written);
      first = false;
    }
    std::printf("],\"recovery\":[");
    struct Sweep {
      const char* label;
      uint32_t checkpoint_interval;
    };
    const Sweep sweeps[] = {{"wal_only", 1u << 20}, {"checkpointed", 16}};
    bool first_sweep = true;
    for (const Sweep& s : sweeps) {
      std::vector<RecoveryPoint> points =
          RunRecoverySweep(s.checkpoint_interval, 42, samples, smoke);
      std::printf("%s{\"config\":\"%s\",\"points\":[",
                  first_sweep ? "" : ",", s.label);
      for (size_t i = 0; i < points.size(); ++i) {
        const RecoveryPoint& p = points[i];
        std::printf(
            "%s{\"point\":%zu,\"log_len\":%.1f,\"wal_records_replayed\":%.1f,"
            "\"reapply_window\":%.1f,\"reapplied_txns\":%.1f,"
            "\"checkpoint_pages_read\":%.1f,\"recovery_ms\":%.3f}",
            i == 0 ? "" : ",", i + 1, p.log_len, p.replayed, p.reapply_window,
            p.reapplied_txns, p.pages_read, p.recovery_ms);
      }
      std::printf("]}");
      first_sweep = false;
    }
    std::printf("]}\n");
    return 0;
  }

  PrintHeader("Durability tax: write throughput per storage configuration");
  std::printf("%-22s %8s %8s %12s %14s %10s %12s %14s\n", "config", "group",
              "ckpt", "write TPS", "decided/s", "wal syncs", "checkpoints",
              "pages written");
  for (const WriteCase& c : cases) {
    WritePoint p = RunWriteCase(c, 42, measure, smoke);
    std::printf("%-22s %8u %8u %12.0f %14.1f %10.0f %12.0f %14.0f\n", c.label,
                c.wal_group_commit, c.checkpoint_interval, p.write_tps,
                p.decided_per_sec, p.wal_syncs, p.checkpoints,
                p.pages_written);
  }

  PrintHeader("Recovery cost vs log length");
  std::printf("%-14s %8s %10s %12s %10s %12s %12s %14s\n", "config", "point",
              "log len", "replayed", "window", "reapplied", "pages read",
              "recovery ms");
  struct Sweep {
    const char* label;
    uint32_t checkpoint_interval;
  };
  const Sweep sweeps[] = {{"wal_only", 1u << 20}, {"checkpointed", 16}};
  for (const Sweep& s : sweeps) {
    std::vector<RecoveryPoint> points =
        RunRecoverySweep(s.checkpoint_interval, 42, samples, smoke);
    for (size_t i = 0; i < points.size(); ++i) {
      const RecoveryPoint& p = points[i];
      std::printf("%-14s %8zu %10.0f %12.0f %10.0f %12.0f %12.0f %14.3f\n",
                  s.label, i + 1, p.log_len, p.replayed, p.reapply_window,
                  p.reapplied_txns, p.pages_read, p.recovery_ms);
    }
  }
  return 0;
}
