// Figure 5: average latency of read-only transactions in TransEdge,
// split into the round-1 latency and the *effective* round-2 latency
// (extra latency weighted by how many transactions needed a second
// round), compared with Augustus, as the number of accessed clusters
// grows.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Point {
  double round1_ms = 0;
  double round2_effective_ms = 0;
  double total_ms = 0;
  double two_round_pct = 0;
};

Point RunOne(workload::RoMode mode, int clusters, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  World world(setup);

  // Cross-partition read-write traffic creates the dependencies that can
  // trigger round 2.
  workload::ClosedLoopRunner background(
      world.system.get(), 8,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0xbb);

  workload::ClosedLoopRunner ro(
      world.system.get(), 10,
      [&, clusters](Rng* rng) {
        return world.plans->MakeReadOnly(5, clusters, rng);
      },
      mode, seed ^ 0xcc);

  background.Start(sim::Millis(500), sim::Seconds(5));
  ro.Start(sim::Millis(500), sim::Seconds(5));
  ro.RunToCompletion();

  Point point;
  point.round1_ms = ro.stats().ro_round1_latency.MeanMs();
  point.total_ms = ro.stats().ro_latency.MeanMs();
  point.round2_effective_ms = point.total_ms - point.round1_ms;
  if (ro.stats().ro_completed > 0) {
    point.two_round_pct = 100.0 *
                          static_cast<double>(ro.stats().ro_two_round) /
                          static_cast<double>(ro.stats().ro_completed);
  }
  return point;
}

}  // namespace

int main() {
  PrintHeader("Figure 5: read-only latency by round, TransEdge vs Augustus");
  std::printf("%-9s %12s %14s %11s %13s\n", "clusters", "round1(ms)",
              "round2-eff(ms)", "round2(%)", "Augustus(ms)");
  for (int clusters = 1; clusters <= 5; ++clusters) {
    Point te = RunOne(workload::RoMode::kTransEdge, clusters, 42);
    Point aug = RunOne(workload::RoMode::kAugustus, clusters, 42);
    std::printf("%-9d %12.2f %14.2f %10.1f%% %13.2f\n", clusters,
                te.round1_ms, te.round2_effective_ms, te.two_round_pct,
                aug.total_ms);
  }
  return 0;
}
