// Figure 13: percentage of aborted read-write transactions as the batch
// size grows, for several injected inter-cluster latencies. Bigger
// batches and slower links widen the conflict window of OCC validation
// (Definition 3.1), so the abort rate climbs.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(size_t batch_size, sim::Time added, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = batch_size;
  setup.env_opts.inter_site_latency += added;
  // Moderate key count: enough contention for a visible abort rate.
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  World world(setup, /*preload=*/false);

  workload::ClosedLoopRunner runner(
      world.system.get(), 30,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x77,
      /*concurrency=*/static_cast<int>(batch_size / 25));
  runner.Start(sim::Millis(400), sim::Millis(1300));
  runner.RunToCompletion(sim::Millis(1000));
  return runner.AbortRatePct();
}

}  // namespace

int main() {
  PrintHeader("Figure 13: read-write abort percentage vs batch size");
  std::printf("%-11s %10s %10s %10s\n", "batch", "+0ms", "+20ms", "+70ms");
  for (size_t batch : {1000u, 2000u, 3500u}) {
    std::printf("%-11zu", batch);
    for (sim::Time added :
         {sim::Millis(0), sim::Millis(20), sim::Millis(70)}) {
      std::printf(" %9.2f%%", RunOne(batch, added, 42));
    }
    std::printf("\n");
  }
  return 0;
}
