// Figure 4: average latency of read-only transactions executed over a
// 2PC/BFT system vs. TransEdge, as the number of accessed clusters grows
// from 1 to 5. The paper reports a 9-24x gap; the gap here comes from the
// same mechanics — the baseline pays BFT batching + 2PC coordination on
// the read path while TransEdge answers from one node per partition.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Point {
  double latency_ms = 0;
  uint64_t completed = 0;
};

Point RunOne(workload::RoMode mode, int clusters, uint64_t seed,
             sim::Time stop = sim::Seconds(5)) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  World world(setup);

  // Background read-write load so dependencies exist across partitions.
  workload::ClosedLoopRunner background(
      world.system.get(), 6,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0xbb);

  // Measured read-only load: 5 keys spread over `clusters` clusters
  // (1 key per cluster at the paper's default width of 5).
  workload::ClosedLoopRunner ro(
      world.system.get(), 10,
      [&, clusters](Rng* rng) {
        return world.plans->MakeReadOnly(5, clusters, rng);
      },
      mode, seed ^ 0xcc);

  sim::Time warmup = std::min<sim::Time>(sim::Millis(500), stop / 4);
  background.Start(warmup, stop);
  ro.Start(warmup, stop);
  ro.RunToCompletion();

  Point point;
  point.latency_ms = ro.stats().ro_latency.MeanMs();
  point.completed = ro.stats().ro_completed;
  return point;
}

}  // namespace

int main() {
  if (SmokeMode()) {
    // Tiny deterministic run (reduced sweep, short window) whose JSON
    // output seeds the perf trajectory; see bench/run_smoke.sh.
    std::printf("{\"bench\":\"fig04_ro_latency\",\"smoke\":true,\"points\":[");
    bool first = true;
    for (int clusters : {1, 5}) {
      Point baseline = RunOne(workload::RoMode::kRegular2pc, clusters, 42,
                              sim::Millis(600));
      Point transedge = RunOne(workload::RoMode::kTransEdge, clusters, 42,
                               sim::Millis(600));
      std::printf(
          "%s{\"clusters\":%d,\"bft2pc_ms\":%.3f,\"transedge_ms\":%.3f,"
          "\"bft2pc_completed\":%llu,\"transedge_completed\":%llu}",
          first ? "" : ",", clusters, baseline.latency_ms,
          transedge.latency_ms,
          static_cast<unsigned long long>(baseline.completed),
          static_cast<unsigned long long>(transedge.completed));
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  PrintHeader("Figure 4: read-only txn latency, 2PC/BFT vs TransEdge");
  std::printf("%-9s %14s %14s %9s\n", "clusters", "2PC/BFT(ms)",
              "TransEdge(ms)", "speedup");
  for (int clusters = 1; clusters <= 5; ++clusters) {
    Point baseline = RunOne(workload::RoMode::kRegular2pc, clusters, 42);
    Point transedge = RunOne(workload::RoMode::kTransEdge, clusters, 42);
    std::printf("%-9d %14.2f %14.2f %8.1fx\n", clusters, baseline.latency_ms,
                transedge.latency_ms,
                transedge.latency_ms > 0
                    ? baseline.latency_ms / transedge.latency_ms
                    : 0.0);
  }
  return 0;
}
