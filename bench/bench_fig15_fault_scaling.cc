// Figure 15: effect of the per-cluster fault threshold f (1 -> 4
// replicas, 2 -> 7, 3 -> 10) on performance across batch sizes. Larger
// clusters pay more intra-cluster coordination per batch, so smaller f
// gives higher throughput / lower latency. (The paper's figure reports
// the trend across batch sizes 900/1500/3000; we print both latency and
// throughput since the paper's caption and axis disagree.)

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Point {
  double latency_ms = 0;
  double tps = 0;
};

Point RunOne(uint32_t f, size_t batch_size, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.f = f;
  setup.config.max_batch_size = batch_size;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;  // Keep buckets small at 100k keys.
  World world(setup, /*preload=*/false);

  workload::ClosedLoopRunner runner(
      world.system.get(), 30,
      [&](Rng* rng) { return world.plans->MakeLocalReadWrite(5, 3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x77,
      /*concurrency=*/static_cast<int>(batch_size / 25));
  runner.Start(sim::Millis(400), sim::Millis(1300));
  runner.RunToCompletion(sim::Millis(1000));
  Point p;
  p.latency_ms = runner.stats().rw_latency.MeanMs();
  p.tps = runner.ThroughputTps();
  return p;
}

}  // namespace

int main() {
  PrintHeader("Figure 15: effect of fault threshold f (replicas = 3f+1)");
  std::printf("%-8s %-10s %14s %14s\n", "batch", "f(replicas)",
              "latency(ms)", "TPS");
  for (size_t batch : {900u, 1500u, 3000u}) {
    for (uint32_t f : {1u, 2u, 3u}) {
      Point p = RunOne(f, batch, 42);
      std::printf("%-8zu f=%u (%2u)   %14.1f %14.0f\n", batch, f, 3 * f + 1,
                  p.latency_ms, p.tps);
    }
  }
  return 0;
}
