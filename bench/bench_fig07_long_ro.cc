// Figure 7: average latency of *long-running* read-only transactions
// (250-2000 read operations spread over all clusters) in TransEdge and
// Augustus, with concurrent read-write traffic. TransEdge pays dependency
// computation; Augustus pays shared locks at 2f+1 replicas per partition
// and holds them for the duration, so its latency grows much faster.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(workload::RoMode mode, int read_ops, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.workload.num_keys = 50000;  // Room for 2000 unique keys per scan.
  setup.config.merkle_depth = 15;
  World world(setup);

  workload::ClosedLoopRunner background(
      world.system.get(), 6,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0xbb);

  workload::ClosedLoopRunner ro(
      world.system.get(), 4,
      [&, read_ops](Rng* rng) {
        return world.plans->MakeReadOnly(read_ops, 5, rng);
      },
      mode, seed ^ 0xcc);

  background.Start(sim::Millis(500), sim::Seconds(4));
  ro.Start(sim::Millis(500), sim::Seconds(4));
  ro.RunToCompletion();
  return ro.stats().ro_latency.MeanMs();
}

}  // namespace

int main() {
  PrintHeader("Figure 7: long-running read-only latency vs scan size");
  std::printf("%-10s %16s %16s\n", "read-ops", "TransEdge(ms)",
              "Augustus(ms)");
  for (int ops : {250, 500, 750, 1000, 1250, 1500, 1750, 2000}) {
    double te = RunOne(workload::RoMode::kTransEdge, ops, 42);
    double aug = RunOne(workload::RoMode::kAugustus, ops, 42);
    std::printf("%-10d %16.2f %16.2f\n", ops, te, aug);
  }
  return 0;
}
