// Figure 10: average latency of distributed read-write transactions as
// the operation mix shifts from read-heavy (R=5,W=1 — effectively local)
// to write-heavy (R=1,W=5 — coordination across all five clusters), for
// several batch sizes. More write clusters mean more 2PC participants,
// more prepare/commit rounds, and higher latency.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(int reads, int writes, size_t batch_size, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = batch_size;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;  // Keep buckets small at 100k keys.
  World world(setup, /*preload=*/false);

  workload::ClosedLoopRunner runner(
      world.system.get(), 30,
      [&, reads, writes](Rng* rng) {
        return world.plans->MakeSkewedReadWrite(reads, writes, rng);
      },
      workload::RoMode::kTransEdge, seed ^ 0x77,
      /*concurrency=*/static_cast<int>(batch_size / 25));
  runner.Start(sim::Millis(400), sim::Millis(1300));
  runner.RunToCompletion(sim::Millis(1000));
  return runner.stats().rw_latency.MeanMs();
}

}  // namespace

int main() {
  PrintHeader("Figure 10: distributed read-write latency vs R/W skew");
  std::printf("%-10s %12s %12s\n", "mix", "b=900", "b=2500");
  const int mixes[][2] = {{5, 1}, {4, 2}, {3, 3}, {2, 4}, {1, 5}};
  for (const auto& mix : mixes) {
    std::printf("R=%d,W=%d  ", mix[0], mix[1]);
    for (size_t batch : {900u, 2500u}) {
      std::printf(" %12.1f", RunOne(mix[0], mix[1], batch, 42));
    }
    std::printf("\n");
  }
  return 0;
}
