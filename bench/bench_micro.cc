// Micro-benchmarks of TransEdge's building blocks (google-benchmark):
// SHA-256, HMAC, Merkle updates and proofs, OCC conflict detection, and
// CD-vector operations. These are host-machine numbers (real time), not
// simulated time.

#include <benchmark/benchmark.h>

#include "txn/cd_vector.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "txn/types.h"

namespace transedge {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(4096);

void BM_HmacSign(benchmark::State& state) {
  crypto::HmacSignatureScheme scheme(8, 1);
  auto signer = scheme.MakeSigner(0);
  Bytes msg(256, 0x7e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->Sign(msg));
  }
}
BENCHMARK(BM_HmacSign);

void BM_HmacVerify(benchmark::State& state) {
  crypto::HmacSignatureScheme scheme(8, 1);
  auto signer = scheme.MakeSigner(0);
  Bytes msg(256, 0x7e);
  crypto::Signature sig = signer->Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verifier().Verify(msg, sig));
  }
}
BENCHMARK(BM_HmacVerify);

void BM_MerklePut(benchmark::State& state) {
  merkle::MerkleTree tree(static_cast<int>(state.range(0)));
  Bytes value(32, 0x11);
  int64_t i = 0;
  for (auto _ : state) {
    tree.Put("key" + std::to_string(i % 4096), value, i);
    ++i;
  }
}
BENCHMARK(BM_MerklePut)->Arg(8)->Arg(13)->Arg(20);

void BM_MerkleProve(benchmark::State& state) {
  merkle::MerkleTree tree(13);
  Bytes value(32, 0x11);
  for (int i = 0; i < 4096; ++i) {
    tree.Put("key" + std::to_string(i), value, i);
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Prove("key" + std::to_string(i % 4096)));
    ++i;
  }
}
BENCHMARK(BM_MerkleProve);

void BM_MerkleVerify(benchmark::State& state) {
  merkle::MerkleTree tree(13);
  Bytes value(32, 0x11);
  for (int i = 0; i < 4096; ++i) {
    tree.Put("key" + std::to_string(i), value, i);
  }
  merkle::MerkleProof proof = tree.Prove("key7").value();
  crypto::Digest root = tree.RootDigest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        merkle::MerkleTree::VerifyProof(proof, "key7", value, 7, root));
  }
}
BENCHMARK(BM_MerkleVerify);

void BM_ConflictCheck(benchmark::State& state) {
  Transaction a, b;
  for (int i = 0; i < 5; ++i) {
    a.read_set.push_back(ReadOp{"ra" + std::to_string(i), 0});
    b.read_set.push_back(ReadOp{"rb" + std::to_string(i), 0});
  }
  for (int i = 0; i < 3; ++i) {
    a.write_set.push_back(WriteOp{"wa" + std::to_string(i), {}});
    b.write_set.push_back(WriteOp{"wb" + std::to_string(i), {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conflicts(a, b));
  }
}
BENCHMARK(BM_ConflictCheck);

void BM_CdVectorPairwiseMax(benchmark::State& state) {
  txn::CdVector a(static_cast<size_t>(state.range(0)));
  txn::CdVector b(static_cast<size_t>(state.range(0)));
  for (PartitionId p = 0; p < state.range(0); ++p) {
    b.Set(p, static_cast<BatchId>(p * 3));
  }
  for (auto _ : state) {
    a.PairwiseMax(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_CdVectorPairwiseMax)->Arg(5)->Arg(64);

}  // namespace
}  // namespace transedge

BENCHMARK_MAIN();
