// Consensus-engine comparison (the Consensus interface's protocol axis):
// the same local-write workload on one cluster under every
// SystemConfig::consensus_kind, reporting committed throughput and the
// engines' message complexity per decided batch. PBFT broadcasts every
// vote (n-1 + 2·n·(n-1) messages per batch at n = 3f+1 replicas); the
// linear-vote engine aggregates votes at the leader and broadcasts
// quorum certificates (≈ 5·(n-1)), so its per-batch message count grows
// linearly with the cluster size instead of quadratically — the gap this
// bench pins, and the knob the ROADMAP's protocol-comparison axis sweeps.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Point {
  double write_tps = 0;
  double msgs_per_batch = 0;
  uint64_t batches = 0;
};

Point RunOne(core::ConsensusKind kind, uint32_t f, uint64_t seed,
             sim::Time measure, bool smoke) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.consensus_kind = kind;
  setup.config.num_partitions = 1;  // Consensus is intra-cluster.
  setup.config.f = f;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;
  World world(setup, /*preload=*/false);

  int clients = smoke ? 40 : 100;
  int concurrency = static_cast<int>(setup.config.max_batch_size / 50);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&](Rng* rng) { return world.plans->MakeWriteOnly(3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x7e, concurrency);
  runner.Start(sim::Millis(500), sim::Millis(500) + measure);
  runner.RunToCompletion(smoke ? sim::Millis(800) : sim::Millis(1200));

  Point point;
  point.write_tps = runner.ThroughputTps();
  uint64_t msgs = 0;
  for (uint32_t i = 0; i < setup.config.replicas_per_cluster(); ++i) {
    msgs += world.system->node(0, i)->stats().consensus_msgs_sent;
  }
  point.batches = world.system->node(0, 0)->stats().batches_decided;
  if (point.batches > 0) {
    point.msgs_per_batch =
        static_cast<double>(msgs) / static_cast<double>(point.batches);
  }
  return point;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const sim::Time measure = smoke ? sim::Millis(1000) : sim::Millis(1500);
  const core::ConsensusKind kinds[] = {core::ConsensusKind::kPbft,
                                       core::ConsensusKind::kLinearVote};

  if (smoke) {
    std::printf("{\"bench\":\"consensus_compare\",\"smoke\":true,\"points\":[");
    bool first = true;
    for (core::ConsensusKind kind : kinds) {
      Point p = RunOne(kind, /*f=*/2, 42, measure, smoke);
      std::printf(
          "%s{\"consensus\":\"%s\",\"write_tps\":%.0f,"
          "\"consensus_msgs_per_batch\":%.1f}",
          first ? "" : ",", core::ConsensusKindName(kind), p.write_tps,
          p.msgs_per_batch);
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  PrintHeader("Consensus engines: throughput and message complexity vs f");
  std::printf("%-6s %-12s %14s %18s %10s\n", "f", "engine", "write TPS",
              "msgs/batch", "batches");
  for (uint32_t f : {1u, 2u, 4u}) {
    for (core::ConsensusKind kind : kinds) {
      Point p = RunOne(kind, f, 42, measure, smoke);
      std::printf("%-6u %-12s %14.0f %18.1f %10llu\n", f,
                  core::ConsensusKindName(kind), p.write_tps,
                  p.msgs_per_batch,
                  static_cast<unsigned long long>(p.batches));
    }
  }
  return 0;
}
