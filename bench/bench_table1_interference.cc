// Table 1: percentage of read-write transaction aborts *caused by
// read-only transactions*, Augustus vs TransEdge, for 1-5 accessed
// clusters. Augustus's shared read locks abort conflicting writers;
// TransEdge's snapshot reads never touch the write path, so its column
// is exactly zero.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(workload::RoMode mode, int clusters, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  // Small key space: read-only scans and writers collide often.
  setup.workload.num_keys = 4000;
  World world(setup);

  workload::ClosedLoopRunner writers(
      world.system.get(), 12,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x77, /*concurrency=*/4);

  // Long-ish read-only scans so Augustus's locks cover many keys.
  workload::ClosedLoopRunner readers(
      world.system.get(), 10,
      [&, clusters](Rng* rng) {
        return world.plans->MakeReadOnly(40, clusters, rng);
      },
      mode, seed ^ 0xcc, /*concurrency=*/2);

  writers.Start(sim::Millis(500), sim::Seconds(4));
  readers.Start(sim::Millis(500), sim::Seconds(4));
  writers.RunToCompletion(sim::Seconds(2));

  // Aborts attributed to read-only locks, as a share of write attempts.
  uint64_t attempts =
      writers.stats().rw_committed + writers.stats().rw_aborted;
  if (attempts == 0) return 0;
  return 100.0 *
         static_cast<double>(world.system->TotalRwAbortedByRoLocks()) /
         static_cast<double>(attempts);
}

}  // namespace

int main() {
  PrintHeader("Table 1: RW aborts caused by read-only transactions (%)");
  std::printf("%-11s", "system");
  for (int c = 1; c <= 5; ++c) std::printf(" %9d", c);
  std::printf("\n%-11s", "Augustus");
  for (int c = 1; c <= 5; ++c) {
    std::printf(" %8.2f%%", RunOne(workload::RoMode::kAugustus, c, 42));
  }
  std::printf("\n%-11s", "TransEdge");
  for (int c = 1; c <= 5; ++c) {
    std::printf(" %8.2f%%", RunOne(workload::RoMode::kTransEdge, c, 42));
  }
  std::printf("\n");
  return 0;
}
