// Figure 8: read-only throughput as additional network latency is
// injected between clusters (0 / 20 / 70 / 150 ms), for 1-5 accessed
// clusters. Reads touching a single (home) cluster are unaffected; the
// farther a read reaches, the more the added latency costs — but the
// drop is bounded by one (worst case two) request rounds, unlike the
// read-write path of Figure 12.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(int clusters, sim::Time added, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.env_opts.inter_site_latency += added;
  World world(setup);

  workload::ClosedLoopRunner ro(
      world.system.get(), 40,
      [&, clusters](Rng* rng) {
        return world.plans->MakeReadOnly(5, clusters, rng);
      },
      workload::RoMode::kTransEdge, seed ^ 0xcc, /*concurrency=*/4);
  ro.Start(sim::Millis(600), sim::Seconds(5));
  ro.RunToCompletion(sim::Seconds(4));
  return ro.ThroughputTps();
}

}  // namespace

int main() {
  PrintHeader("Figure 8: read-only throughput vs added inter-cluster latency");
  std::printf("%-9s %12s %12s %12s %12s\n", "clusters", "+0ms", "+20ms",
              "+70ms", "+150ms");
  for (int clusters = 1; clusters <= 5; ++clusters) {
    std::printf("%-9d", clusters);
    for (sim::Time added :
         {sim::Millis(0), sim::Millis(20), sim::Millis(70),
          sim::Millis(150)}) {
      std::printf(" %12.0f", RunOne(clusters, added, 42));
    }
    std::printf("\n");
  }
  return 0;
}
