// Sharded-pipeline scaling: local write throughput as the leader's
// admission path is split over pipeline_shards ∈ {1, 2, 4, 8} at high
// client counts. The single-pipeline leader serializes admission on one
// conflict index and pays the superlinear batch-construction pressure on
// the whole batch (the bottleneck behind Figures 9/11 at the sweet-spot
// batch sizes); sharding pays that term per shard (Σ nᵢ² instead of n²),
// so committed throughput should rise monotonically with the shard count
// while the committed state stays identical (see sharded_pipeline_test).

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(uint32_t shards, core::ShardRouterKind kind, uint64_t seed,
              sim::Time measure, bool smoke) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = 2000;
  setup.config.pipeline_shards = shards;
  setup.config.pipeline_shard_router = kind;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;
  // Smoke shrinks to a single cluster: one leader's admission path is
  // exactly what scales with shards, and it is 5x cheaper to simulate.
  if (smoke) setup.config.num_partitions = 1;
  World world(setup, /*preload=*/false);

  // High client count, in-flight load well above the size trigger *per
  // partition* so the batch-size cap binds and back-to-back full batches
  // form — the regime where admission is the leader's bottleneck.
  int clients = 100;
  int concurrency =
      static_cast<int>(setup.config.max_batch_size * 2 *
                       setup.config.num_partitions / 100);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&](Rng* rng) { return world.plans->MakeWriteOnly(3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x99, concurrency);
  runner.Start(sim::Millis(500), sim::Millis(500) + measure);
  runner.RunToCompletion(smoke ? sim::Millis(800) : sim::Millis(1200));
  return runner.ThroughputTps();
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const sim::Time measure = smoke ? sim::Millis(1000) : sim::Millis(1500);
  const uint32_t shard_counts[] = {1, 2, 4, 8};

  if (smoke) {
    std::printf("{\"bench\":\"shard_scaling\",\"smoke\":true,\"points\":[");
    bool first = true;
    for (uint32_t shards : shard_counts) {
      double tps = RunOne(shards, core::ShardRouterKind::kHash, 42, measure, smoke);
      std::printf("%s{\"pipeline_shards\":%u,\"write_tps\":%.0f}",
                  first ? "" : ",", shards, tps);
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  PrintHeader("Sharded pipeline: write throughput vs pipeline_shards");
  std::printf("%-8s %18s %18s\n", "shards", "Hash router(TPS)",
              "Range router(TPS)");
  for (uint32_t shards : shard_counts) {
    double hash_tps =
        RunOne(shards, core::ShardRouterKind::kHash, 42, measure, smoke);
    double range_tps =
        RunOne(shards, core::ShardRouterKind::kRange, 42, measure, smoke);
    std::printf("%-8u %18.0f %18.0f\n", shards, hash_tps, range_tps);
  }
  return 0;
}
