// Watch fan-out: aggregate certified-update delivery of the push tier
// versus round-1 polling. One cluster holds a small hot key set under
// constant disjoint-writer churn; phase A registers N watch clients on
// the hot range and counts verified key-updates their delta streams
// deliver, phase B gives the same N clients closed-loop round-1
// read-only polls over the same keys and counts the value changes they
// actually observe. The server cost asymmetry is the point: a pushed
// batch is proven once per range and fanned out to every subscriber,
// while every poll pays the per-key serve + signature cost again, so
// the polling side saturates the serving replica long before it matches
// the push tier's delivery rate. Every pushed seed/delta carries a
// batch certificate + per-key Merkle proofs and must verify; a single
// verification failure fails the bench.

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/watch_client.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

constexpr int kHotKeys = 16;

/// Default cost model (not the paper-calibrated one): serving a
/// read-only key costs 8us plus a 25us reply signature, which is what
/// makes poll saturation visible at realistic client counts.
BenchSetup FanoutSetup(uint64_t seed) {
  BenchSetup setup;
  setup.config.num_partitions = 1;
  setup.config.f = 1;  // 4 replicas; fan-out is an intra-cluster story.
  setup.config.consensus_kind = core::ConsensusKind::kLinearVote;
  setup.config.batch_interval = sim::Millis(5);
  setup.config.merkle_depth = 13;
  setup.env_opts.seed = seed;
  setup.workload.num_keys = 1024;
  setup.workload.value_size = 16;
  setup.workload.seed = seed;
  return setup;
}

/// The generator's key universe is k%010llu, so the first kHotKeys keys
/// form a contiguous range the watchers subscribe to.
std::vector<Key> HotKeys() {
  std::vector<Key> keys;
  char buf[16];
  for (int i = 0; i < kHotKeys; ++i) {
    std::snprintf(buf, sizeof(buf), "k%010d", i);
    keys.emplace_back(buf);
  }
  return keys;
}

/// Repeatedly writes fresh values to `key` until `*stop` is set. Each
/// writer owns one hot key, so the write mix is conflict-free and every
/// batch carries about one new version per hot key. The returned owner
/// must outlive the run — scheduled callbacks hold a raw pointer into
/// it.
std::shared_ptr<std::function<void()>> StartWriteLoop(
    core::System* system, core::Client* writer, Key key, uint64_t* committed,
    const bool* stop) {
  auto loop = std::make_shared<std::function<void()>>();
  auto* fn = loop.get();
  *loop = [=] {
    if (*stop) return;
    writer->ExecuteReadWrite(
        {}, {WriteOp{key, ToBytes("v" + std::to_string(*committed))}},
        [=](core::RwResult r) {
          if (r.committed) ++*committed;
          (*fn)();
        });
  };
  system->env().Schedule(sim::Millis(5), *loop);
  return loop;
}

/// Closed-loop round-1 polling over `keys`; a returned value counts as
/// an update only when it differs from the last one this poller saw for
/// that key (a poll that observes nothing new delivered nothing).
std::shared_ptr<std::function<void()>> StartPollLoop(
    core::System* system, core::Client* poller, std::vector<Key> keys,
    uint64_t* updates, uint64_t* polls, uint64_t* failures,
    const bool* stop) {
  auto seen = std::make_shared<std::map<Key, std::optional<Value>>>();
  auto loop = std::make_shared<std::function<void()>>();
  auto* fn = loop.get();
  *loop = [=] {
    if (*stop) return;
    poller->ExecuteReadOnly(keys, [=](core::RoResult r) {
      if (r.status.ok()) {
        ++*polls;
        for (const auto& [key, value] : r.values) {
          auto it = seen->find(key);
          if (it == seen->end() || it->second != value) {
            ++*updates;
            (*seen)[key] = value;
          }
        }
      } else {
        ++*failures;
      }
      (*fn)();
    });
  };
  system->env().Schedule(sim::Millis(5), *loop);
  return loop;
}

struct PushResult {
  double updates_per_sec = 0;
  double write_tps = 0;
  uint64_t deltas_applied = 0;
  uint64_t proof_failures = 0;
  uint64_t gap_failures = 0;
  uint64_t duplicate_failures = 0;
  bool all_subscribed = false;
};

struct PollResult {
  double updates_per_sec = 0;
  double polls_per_sec = 0;
  double write_tps = 0;
  uint64_t failures = 0;
};

PushResult RunPushPhase(int watchers, uint64_t seed, sim::Time t0,
                        sim::Time t1) {
  World world(FanoutSetup(seed));
  sim::Environment& env = world.system->env();
  const std::vector<Key> hot = HotKeys();

  bool stop = false;
  std::vector<uint64_t> committed(kHotKeys, 0);
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (int i = 0; i < kHotKeys; ++i) {
    loops.push_back(StartWriteLoop(world.system.get(),
                                   world.system->AddClient(), hot[i],
                                   &committed[i], &stop));
  }

  std::vector<core::WatchClient*> subs;
  subs.reserve(watchers);
  const Key lo = hot.front();
  const Key hi = hot.back();
  for (int i = 0; i < watchers; ++i) {
    core::WatchClient* wc = world.system->AddWatchClient();
    subs.push_back(wc);
    // Stagger the subscribes so the seed burst does not land on one
    // simulated instant.
    env.Schedule(sim::Millis(20) + sim::Micros(50) * i,
                 [wc, lo, hi] { wc->Watch(lo, hi); });
  }

  uint64_t updates_t0 = 0, updates_t1 = 0;
  uint64_t writes_t0 = 0, writes_t1 = 0;
  PushResult result;
  env.ScheduleAt(t0, [&] {
    result.all_subscribed = true;
    for (core::WatchClient* wc : subs) {
      updates_t0 += wc->stats().keys_updated;
      if (!wc->AllSubscribed()) result.all_subscribed = false;
    }
    for (uint64_t c : committed) writes_t0 += c;
  });
  env.ScheduleAt(t1, [&] {
    for (core::WatchClient* wc : subs) updates_t1 += wc->stats().keys_updated;
    for (uint64_t c : committed) writes_t1 += c;
  });
  env.RunUntil(t1);
  stop = true;
  env.RunUntil(t1 + sim::Millis(100));  // Drain in-flight callbacks.

  const double secs = static_cast<double>(t1 - t0) / 1e6;
  result.updates_per_sec =
      static_cast<double>(updates_t1 - updates_t0) / secs;
  result.write_tps = static_cast<double>(writes_t1 - writes_t0) / secs;
  for (core::WatchClient* wc : subs) {
    result.deltas_applied += wc->stats().deltas_applied;
    result.proof_failures += wc->stats().verification_failures;
    result.gap_failures += wc->stats().gaps_detected;
    result.duplicate_failures += wc->stats().duplicates_dropped;
  }
  return result;
}

PollResult RunPollPhase(int pollers, uint64_t seed, sim::Time t0,
                        sim::Time t1) {
  World world(FanoutSetup(seed));
  sim::Environment& env = world.system->env();
  const std::vector<Key> hot = HotKeys();

  bool stop = false;
  std::vector<uint64_t> committed(kHotKeys, 0);
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (int i = 0; i < kHotKeys; ++i) {
    loops.push_back(StartWriteLoop(world.system.get(),
                                   world.system->AddClient(), hot[i],
                                   &committed[i], &stop));
  }

  uint64_t updates = 0, polls = 0, failures = 0;
  for (int i = 0; i < pollers; ++i) {
    loops.push_back(StartPollLoop(world.system.get(),
                                  world.system->AddClient(), hot, &updates,
                                  &polls, &failures, &stop));
  }

  uint64_t updates_t0 = 0, updates_t1 = 0;
  uint64_t polls_t0 = 0, polls_t1 = 0;
  uint64_t writes_t0 = 0, writes_t1 = 0;
  env.ScheduleAt(t0, [&] {
    updates_t0 = updates;
    polls_t0 = polls;
    for (uint64_t c : committed) writes_t0 += c;
  });
  env.ScheduleAt(t1, [&] {
    updates_t1 = updates;
    polls_t1 = polls;
    for (uint64_t c : committed) writes_t1 += c;
  });
  env.RunUntil(t1);
  stop = true;
  env.RunUntil(t1 + sim::Millis(100));

  const double secs = static_cast<double>(t1 - t0) / 1e6;
  PollResult result;
  result.updates_per_sec =
      static_cast<double>(updates_t1 - updates_t0) / secs;
  result.polls_per_sec = static_cast<double>(polls_t1 - polls_t0) / secs;
  result.write_tps = static_cast<double>(writes_t1 - writes_t0) / secs;
  result.failures = failures;
  return result;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const uint64_t seed = 42;
  const sim::Time t0 = sim::Millis(300);  // Subscribes/loops are warm.
  const sim::Time t1 = t0 + (smoke ? sim::Millis(600) : sim::Seconds(1));
  const int watchers = smoke ? 320 : 512;

  PushResult push = RunPushPhase(watchers, seed, t0, t1);
  PollResult poll = RunPollPhase(watchers, seed, t0, t1);
  const double ratio =
      poll.updates_per_sec > 0 ? push.updates_per_sec / poll.updates_per_sec
                               : 0;

  // Acceptance invariants (deterministic, so a hard gate is safe): the
  // push tier must beat polling by 5x at this fan-out, with every
  // pushed proof verifying and no stream gaps or duplicates.
  const bool ok = push.all_subscribed && push.proof_failures == 0 &&
                  push.gap_failures == 0 && push.duplicate_failures == 0 &&
                  ratio >= 5.0;

  if (smoke) {
    std::printf(
        "{\"bench\":\"watch_fanout\",\"smoke\":true,\"watchers\":%d,"
        "\"hot_keys\":%d,\"push_update_throughput\":%.0f,"
        "\"poll_update_throughput\":%.0f,\"push_poll_ratio\":%.2f,"
        "\"push_write_tps\":%.0f,\"poll_write_tps\":%.0f,"
        "\"polls_per_sec\":%.0f,\"deltas_applied\":%llu,"
        "\"proof_failures\":%llu,\"gap_failures\":%llu,"
        "\"duplicate_failures\":%llu,\"poll_failures\":%llu,\"pass\":%s}\n",
        watchers, kHotKeys, push.updates_per_sec, poll.updates_per_sec,
        ratio, push.write_tps, poll.write_tps, poll.polls_per_sec,
        static_cast<unsigned long long>(push.deltas_applied),
        static_cast<unsigned long long>(push.proof_failures),
        static_cast<unsigned long long>(push.gap_failures),
        static_cast<unsigned long long>(push.duplicate_failures),
        static_cast<unsigned long long>(poll.failures),
        ok ? "true" : "false");
    return ok ? 0 : 1;
  }

  PrintHeader("Watch fan-out: certified push vs round-1 polling");
  std::printf("%9s %10s %14s %14s %8s %8s %6s %6s\n", "watchers",
              "write TPS", "push upd/s", "poll upd/s", "ratio", "polls/s",
              "proofX", "gaps");
  for (int n : {64, 128, 256, 512}) {
    PushResult p = RunPushPhase(n, seed, t0, t1);
    PollResult q = RunPollPhase(n, seed, t0, t1);
    double r = q.updates_per_sec > 0 ? p.updates_per_sec / q.updates_per_sec
                                     : 0;
    std::printf("%9d %10.0f %14.0f %14.0f %7.1fx %8.0f %6llu %6llu\n", n,
                p.write_tps, p.updates_per_sec, q.updates_per_sec, r,
                q.polls_per_sec,
                static_cast<unsigned long long>(p.proof_failures),
                static_cast<unsigned long long>(p.gap_failures));
  }
  std::printf("\nheadline (%d watchers): push %.0f upd/s vs poll %.0f upd/s "
              "= %.1fx %s\n",
              watchers, push.updates_per_sec, poll.updates_per_sec, ratio,
              ok ? "(pass)" : "(FAIL)");
  return ok ? 0 : 1;
}
