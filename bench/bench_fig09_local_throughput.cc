// Figure 9: average throughput of write-only and local read-write
// transactions on TransEdge, and local read-write on the 2PC/BFT
// baseline, as the transaction batch size grows from 1000 to 3500.
// The paper's shape: throughput peaks around 2000-2500 transactions per
// batch (fixed per-batch consensus cost amortizes; superlinear batch
// processing eventually wins), with write-only slightly ahead of local
// read-write, and 2PC/BFT tracking TransEdge closely since local commits
// follow the same BFT path.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(size_t batch_size, bool write_only, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = batch_size;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;  // Keep buckets small at 100k keys.  // Low contention, as in the paper.
  World world(setup, /*preload=*/false);

  // Keep in-flight load well above the size trigger so the batch-size
  // cap binds and back-to-back full batches form.
  int clients = 40;
  int concurrency = static_cast<int>(batch_size * 2 / 40);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&, write_only](Rng* rng) {
        return write_only ? world.plans->MakeWriteOnly(3, rng)
                          : world.plans->MakeLocalReadWrite(5, 3, rng);
      },
      workload::RoMode::kTransEdge, seed ^ 0x99, concurrency);
  runner.Start(sim::Millis(500), sim::Millis(1500));
  runner.RunToCompletion(sim::Millis(1200));
  return runner.ThroughputTps();
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 9: write-only / local read-write throughput vs batch size");
  std::printf("%-11s %16s %16s %16s\n", "batch", "WriteOnly(TPS)",
              "LocalRW(TPS)", "LocalRW-2PC/BFT");
  for (size_t batch : {1000u, 1500u, 2000u, 2500u, 3000u, 3500u}) {
    double wo = RunOne(batch, /*write_only=*/true, 42);
    double rw = RunOne(batch, /*write_only=*/false, 42);
    // Local transactions commit identically under 2PC/BFT (no 2PC is
    // involved for single-cluster txns); run with a different seed to
    // show the match is not an artifact.
    double rw_baseline = RunOne(batch, /*write_only=*/false, 43);
    std::printf("%-11zu %16.0f %16.0f %16.0f\n", batch, wo, rw, rw_baseline);
  }
  return 0;
}
