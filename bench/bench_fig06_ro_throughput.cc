// Figure 6: average throughput of read-only transactions in TransEdge
// and Augustus as the number of accessed clusters grows. TransEdge's
// lock-free, coordination-free reads sustain higher throughput than
// Augustus's quorum-voting locked reads at every width.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(workload::RoMode mode, int clusters, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  World world(setup);

  workload::ClosedLoopRunner ro(
      world.system.get(), 40,
      [&, clusters](Rng* rng) {
        return world.plans->MakeReadOnly(5, clusters, rng);
      },
      mode, seed ^ 0xcc, /*concurrency=*/3);
  ro.Start(sim::Millis(500), sim::Seconds(4));
  ro.RunToCompletion();
  return ro.ThroughputTps();
}

}  // namespace

int main() {
  PrintHeader("Figure 6: read-only throughput, TransEdge vs Augustus");
  std::printf("%-9s %16s %16s\n", "clusters", "TransEdge(TPS)",
              "Augustus(TPS)");
  for (int clusters = 1; clusters <= 5; ++clusters) {
    double te = RunOne(workload::RoMode::kTransEdge, clusters, 42);
    double aug = RunOne(workload::RoMode::kAugustus, clusters, 42);
    std::printf("%-9d %16.0f %16.0f\n", clusters, te, aug);
  }
  return 0;
}
