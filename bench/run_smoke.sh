#!/usr/bin/env bash
# Smoke benchmark: runs the micro-benchmarks and a shrunken Figure-4
# bench with tiny parameters and emits one JSON document, seeding the
# BENCH_*.json perf trajectory. Fast enough for CI (~1 min).
#
# Usage: bench/run_smoke.sh [output.json]
#   BUILD_DIR  build tree holding the bench binaries (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_smoke.json}

for bench in bench_fig04_ro_latency bench_shard_scaling bench_consensus_compare bench_apply_pipeline bench_durability bench_watch_fanout; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "error: $BUILD_DIR/$bench not built" >&2
    echo "hint: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

fig04_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_fig04_ro_latency" | grep '^{')
shard_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_shard_scaling" | grep '^{')
consensus_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_consensus_compare" | grep '^{')
apply_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_apply_pipeline" | grep '^{')
durability_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_durability" | grep '^{')
watch_json=$(TRANSEDGE_SMOKE=1 "$BUILD_DIR/bench_watch_fanout" | grep '^{')

# bench_micro is optional (needs google-benchmark); emit native JSON when
# present, a placeholder otherwise.
if [[ -x "$BUILD_DIR/bench_micro" ]]; then
  micro_json=$("$BUILD_DIR/bench_micro" \
    --benchmark_filter='BM_Sha256/256|BM_HmacSign|BM_HmacVerify|BM_MerklePut/13|BM_MerkleProve' \
    --benchmark_min_time=0.05 --benchmark_format=json 2>/dev/null)
else
  micro_json='{"skipped":"bench_micro not built (google-benchmark missing)"}'
fi

{
  echo '{'
  echo '"generated_by": "bench/run_smoke.sh",'
  echo '"micro":'
  echo "$micro_json"
  echo ','
  echo '"fig04_ro_latency":'
  echo "$fig04_json"
  echo ','
  echo '"shard_scaling":'
  echo "$shard_json"
  echo ','
  echo '"consensus_compare":'
  echo "$consensus_json"
  echo ','
  echo '"apply_pipeline":'
  echo "$apply_json"
  echo ','
  echo '"durability":'
  echo "$durability_json"
  echo ','
  echo '"watch_fanout":'
  echo "$watch_json"
  echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
