// Decided vs. applied throughput across the pipelining knobs: the same
// local-write workload on one cluster while pipeline_depth, async_apply,
// apply_shards, and an artificial apply-cost inflation vary. With the
// storage stack on the decision critical path (sync apply), a 10×
// apply_per_txn inflation eats straight into decided throughput; with a
// deep pipeline draining an asynchronous apply queue, consensus keeps
// deciding at (nearly) the uninflated rate while last_applied trails the
// log tail — the gap this bench pins, and sharded apply then closes the
// applied-side gap by paying the slowest leaf-subrange instead of the
// serial sum.

#include <algorithm>
#include <functional>

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Case {
  const char* label;
  uint32_t pipeline_depth;
  bool async_apply;
  uint32_t apply_shards;
  int apply_cost_x;
};

struct Point {
  double write_tps = 0;
  double decided_per_sec = 0;
  double applied_per_sec = 0;
  double max_apply_lag = 0;  // Batches, sampled while the run is hot.
};

Point RunOne(const Case& c, uint64_t seed, sim::Time measure, bool smoke) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.consensus_kind = core::ConsensusKind::kLinearVote;
  setup.config.num_partitions = 1;  // Consensus + apply are intra-cluster.
  setup.config.f = 2;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;
  setup.config.pipeline_depth = c.pipeline_depth;
  setup.config.async_apply = c.async_apply;
  setup.config.apply_shards = c.apply_shards;
  setup.config.cost.apply_per_txn =
      setup.config.cost.apply_per_txn * c.apply_cost_x;
  World world(setup, /*preload=*/false);

  int clients = smoke ? 40 : 100;
  int concurrency = static_cast<int>(setup.config.max_batch_size / 50);
  workload::ClosedLoopRunner runner(
      world.system.get(), clients,
      [&](Rng* rng) { return world.plans->MakeWriteOnly(3, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x7e, concurrency);

  const sim::Time t0 = sim::Millis(500);
  const sim::Time t1 = t0 + measure;
  runner.Start(t0, t1);

  // Counter snapshots over the measurement window plus a lag probe: the
  // decided watermark is the leader's log tail, the applied watermark is
  // last_applied.
  uint64_t decided_at_t0 = 0, decided_at_t1 = 0;
  BatchId applied_at_t0 = kNoBatch, applied_at_t1 = kNoBatch;
  BatchId max_lag = 0;
  const core::TransEdgeNode* leader = world.system->node(0, 0);
  sim::Environment& env = world.system->env();
  env.Schedule(t0 - env.now(), [&] {
    decided_at_t0 = leader->stats().batches_decided;
    applied_at_t0 = leader->last_applied();
  });
  env.Schedule(t1 - env.now(), [&] {
    decided_at_t1 = leader->stats().batches_decided;
    applied_at_t1 = leader->last_applied();
  });
  std::function<void()> probe = [&] {
    BatchId lag = leader->log().LastBatchId() - leader->last_applied();
    max_lag = std::max(max_lag, lag);
    if (env.now() < t1) env.Schedule(sim::Millis(5), probe);
  };
  env.Schedule(t0 - env.now(), probe);

  runner.RunToCompletion(smoke ? sim::Millis(800) : sim::Millis(1200));

  Point point;
  point.write_tps = runner.ThroughputTps();
  const double secs = static_cast<double>(measure) / 1e6;
  point.decided_per_sec =
      static_cast<double>(decided_at_t1 - decided_at_t0) / secs;
  point.applied_per_sec =
      static_cast<double>(applied_at_t1 - applied_at_t0) / secs;
  point.max_apply_lag = static_cast<double>(max_lag);
  return point;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const sim::Time measure = smoke ? sim::Millis(1000) : sim::Millis(1500);

  const Case cases[] = {
      {"sync_1x", 1, false, 1, 1},
      {"sync_10x", 1, false, 1, 10},
      {"async_d4_1x", 4, true, 1, 1},
      {"async_d4_10x", 4, true, 1, 10},
      {"async_d4_s4_10x", 4, true, 4, 10},
  };

  if (smoke) {
    std::printf("{\"bench\":\"apply_pipeline\",\"smoke\":true,\"points\":[");
    bool first = true;
    for (const Case& c : cases) {
      Point p = RunOne(c, 42, measure, smoke);
      std::printf(
          "%s{\"config\":\"%s\",\"pipeline_depth\":%u,"
          "\"async_apply\":%s,\"apply_shards\":%u,\"apply_cost_x\":%d,"
          "\"write_tps\":%.0f,\"decided_batches_per_sec\":%.1f,"
          "\"applied_batches_per_sec\":%.1f,\"max_apply_lag\":%.1f}",
          first ? "" : ",", c.label, c.pipeline_depth,
          c.async_apply ? "true" : "false", c.apply_shards, c.apply_cost_x,
          p.write_tps, p.decided_per_sec, p.applied_per_sec, p.max_apply_lag);
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  PrintHeader("Apply pipeline: decided vs applied throughput");
  std::printf("%-18s %6s %6s %7s %7s %12s %14s %14s %9s\n", "config", "depth",
              "async", "shards", "cost×", "write TPS", "decided/s",
              "applied/s", "max lag");
  for (const Case& c : cases) {
    Point p = RunOne(c, 42, measure, smoke);
    std::printf("%-18s %6u %6s %7u %7d %12.0f %14.1f %14.1f %9.0f\n", c.label,
                c.pipeline_depth, c.async_apply ? "yes" : "no", c.apply_shards,
                c.apply_cost_x, p.write_tps, p.decided_per_sec,
                p.applied_per_sec, p.max_apply_lag);
  }
  // Deeper sweep: depth × shards at 10× apply cost.
  PrintHeader("Depth × shards sweep at 10× apply cost (async)");
  std::printf("%6s %7s %12s %14s %14s %9s\n", "depth", "shards", "write TPS",
              "decided/s", "applied/s", "max lag");
  for (uint32_t depth : {1u, 2u, 4u, 8u}) {
    for (uint32_t shards : {1u, 4u}) {
      Case c{"sweep", depth, true, shards, 10};
      Point p = RunOne(c, 42, measure, smoke);
      std::printf("%6u %7u %12.0f %14.1f %14.1f %9.0f\n", depth, shards,
                  p.write_tps, p.decided_per_sec, p.applied_per_sec,
                  p.max_apply_lag);
    }
  }
  return 0;
}
