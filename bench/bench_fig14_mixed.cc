// Figure 14: throughput as the workload mix shifts between local
// read-write transactions (LRWT) and distributed read-write transactions
// (DRWT). Pure-local workloads avoid 2PC entirely and run an order of
// magnitude faster than pure-distributed ones.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(int drwt_pct, size_t batch_size, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = batch_size;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;  // Keep buckets small at 100k keys.
  World world(setup, /*preload=*/false);

  workload::ClosedLoopRunner runner(
      world.system.get(), 30,
      [&, drwt_pct](Rng* rng) {
        if (rng->NextBounded(100) < static_cast<uint64_t>(drwt_pct)) {
          return world.plans->MakeReadWrite(5, 3, 5, rng);
        }
        return world.plans->MakeLocalReadWrite(5, 3, rng);
      },
      workload::RoMode::kTransEdge, seed ^ 0x77,
      /*concurrency=*/static_cast<int>(batch_size / 25));
  runner.Start(sim::Millis(400), sim::Millis(1300));
  runner.RunToCompletion(sim::Millis(1000));
  return runner.ThroughputTps();
}

}  // namespace

int main() {
  PrintHeader("Figure 14: throughput vs LRWT/DRWT workload mix");
  std::printf("%-22s %12s\n", "mix", "b=2000");
  for (int drwt : {100, 80, 60, 40, 20, 0}) {
    std::printf("LRWT=%3d%%, DRWT=%3d%%  ", 100 - drwt, drwt);
    for (size_t batch : {2000u}) {
      std::printf(" %12.0f", RunOne(drwt, batch, 42));
    }
    std::printf("\n");
  }
  return 0;
}
