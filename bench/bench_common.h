#ifndef TRANSEDGE_BENCH_BENCH_COMMON_H_
#define TRANSEDGE_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure bench binaries. Every bench builds a
// full simulated deployment with the paper's §5.1 setup (5 clusters of
// 3f+1 = 7 replicas, hashed keys, YCSB-style transaction mixes), drives
// it with closed-loop clients, and prints the rows/series of the
// corresponding figure or table. All latencies/throughputs are measured
// in simulated time and are fully deterministic for a given seed.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace transedge::bench {

struct BenchSetup {
  core::SystemConfig config;
  sim::EnvironmentOptions env_opts;
  workload::WorkloadOptions workload;

  /// Paper defaults: 5 clusters, f = 2 (7 replicas each), 10 ms batch
  /// cadence, clusters a few ms apart (edge locality), clients
  /// co-located with a home cluster.
  static BenchSetup PaperDefaults(uint64_t seed = 1) {
    BenchSetup setup;
    setup.config.num_partitions = 5;
    setup.config.f = 2;
    // The paper's testbed is a single ChameleonCloud site: clusters sit a
    // LAN hop apart (experiments then *add* latency between clusters —
    // Figures 8, 12, 13). The 2PC/BFT baseline's read latency is
    // dominated by batch waits, matching the paper's ~70-80 ms.
    setup.config.batch_interval = sim::Millis(15);
    setup.config.max_batch_size = 2000;
    setup.config.merkle_depth = 13;
    // Cost-model calibration (see EXPERIMENTS.md): the fixed per-batch
    // consensus cost amortizes with batch size while the quadratic term
    // (conflict-index and Merkle churn) grows, reproducing the paper's
    // 2000-2500-transaction batching sweet spot (Figure 9).
    setup.config.cost.admit_per_txn = sim::Micros(2);
    setup.config.cost.validate_per_txn = sim::Micros(6);
    setup.config.cost.apply_per_txn = sim::Micros(3);
    setup.config.cost.batch_overhead = sim::Millis(10);
    setup.config.cost.batch_quadratic_ns = 3.0;
    setup.config.cost.ro_serve_per_key = sim::Micros(3);
    // Host-CPU dedup of identical follower Merkle updates (simulated
    // costs unchanged); tests exercise the full recomputation path.
    setup.config.simulate_shared_merkle = true;
    setup.env_opts.seed = seed;
    setup.env_opts.intra_site_latency = sim::Micros(300);
    setup.env_opts.inter_site_latency = sim::Millis(1);
    setup.env_opts.latency_jitter = sim::Micros(150);
    setup.workload.num_keys = 20000;
    setup.workload.value_size = 32;
    setup.workload.seed = seed;
    return setup;
  }
};

/// One fully wired world: system + key space + plan generator.
///
/// `preload` controls whether the whole key space is installed as
/// initial state. Read-only experiments need it (reads must find
/// authenticated values). Read-write experiments run against the paper's
/// full 1M-key space *without* preloading: OCC semantics are identical
/// (an unwritten key reads as absent at version -1), and it keeps memory
/// and setup time flat. Key spaces and preload states are memoized
/// across the points of a sweep.
struct World {
  core::System::PreloadState empty_preload;
  std::unique_ptr<core::System> system;
  std::shared_ptr<workload::KeySpace> keys;
  std::unique_ptr<workload::PlanGenerator> plans;

  explicit World(const BenchSetup& setup, bool preload = true) {
    system = std::make_unique<core::System>(setup.config, setup.env_opts);
    keys = CachedKeySpace(setup);
    plans = std::make_unique<workload::PlanGenerator>(
        keys.get(), setup.config.num_partitions);
    if (preload) {
      system->Preload(CachedPreload(setup, *keys));
    }
    system->Start();
    // Let every cluster certify its genesis batch before clients start.
    system->env().RunUntil(sim::Millis(15));
  }

 private:
  static std::string CacheKey(const BenchSetup& setup) {
    return std::to_string(setup.config.num_partitions) + "/" +
           std::to_string(setup.config.merkle_depth) + "/" +
           std::to_string(setup.workload.num_keys) + "/" +
           std::to_string(setup.workload.value_size) + "/" +
           std::to_string(setup.workload.seed);
  }

  static std::shared_ptr<workload::KeySpace> CachedKeySpace(
      const BenchSetup& setup) {
    static std::map<std::string, std::shared_ptr<workload::KeySpace>> cache;
    auto& slot = cache[CacheKey(setup)];
    if (slot == nullptr) {
      slot = std::make_shared<workload::KeySpace>(
          setup.workload, setup.config.num_partitions);
    }
    return slot;
  }

  static const core::System::PreloadState& CachedPreload(
      const BenchSetup& setup, const workload::KeySpace& keys) {
    static std::map<std::string,
                    std::unique_ptr<core::System::PreloadState>>
        cache;
    auto& slot = cache[CacheKey(setup)];
    if (slot == nullptr) {
      slot = std::make_unique<core::System::PreloadState>(
          core::System::BuildPreloadState(setup.config.num_partitions,
                                          setup.config.merkle_depth,
                                          keys.InitialData()));
    }
    return *slot;
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// True when TRANSEDGE_SMOKE is set (and not "0"): benches shrink their
/// sweeps/durations and emit machine-readable JSON so bench/run_smoke.sh
/// can seed the BENCH_*.json perf trajectory cheaply.
inline bool SmokeMode() {
  const char* v = std::getenv("TRANSEDGE_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace transedge::bench

#endif  // TRANSEDGE_BENCH_BENCH_COMMON_H_
