// Ablation: what the CD-vector machinery actually buys.
//
//  (a) Full TransEdge: paired cross-partition writes are never observed
//      torn by read-only transactions.
//  (b) Merkle-only (Algorithm 2 disabled): each partition's response
//      still authenticates perfectly, yet snapshots tear across
//      partitions — the Figure 1 anomaly, quantified.
//  (c) Strict fixpoint mode: the extension documented in DESIGN.md §4;
//      reports the round distribution.

#include <functional>

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

struct Outcome {
  int reads = 0;
  int torn = 0;
  int two_round = 0;
  int max_rounds = 1;
};

Outcome RunOne(bool verify_dependencies, bool strict, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.num_partitions = 3;
  setup.config.strict_ro_rounds = strict;
  setup.config.batch_interval = sim::Millis(5);
  setup.env_opts.inter_site_latency = sim::Millis(8);
  World world(setup);

  storage::PartitionMap pmap(3);
  Key kx, ky;
  {
    Rng rng(seed);
    while (kx.empty() || ky.empty()) {
      const Key& k = world.keys->RandomKey(&rng);
      if (pmap.OwnerOf(k) == 0 && kx.empty()) kx = k;
      if (pmap.OwnerOf(k) == 1 && ky.empty()) ky = k;
    }
  }

  core::Client* writer = world.system->AddClient();
  core::Client* reader = world.system->AddClient();
  reader->set_verify_dependencies(verify_dependencies);

  auto version = std::make_shared<int>(0);
  auto write_loop = std::make_shared<std::function<void()>>();
  *write_loop = [&, version, write_loop] {
    if (world.system->env().now() > sim::Seconds(4)) return;
    std::string v = "v" + std::to_string(++*version);
    writer->ExecuteReadWrite(
        {}, {WriteOp{kx, ToBytes(v)}, WriteOp{ky, ToBytes(v)}},
        [write_loop](core::RwResult) { (*write_loop)(); });
  };

  auto outcome = std::make_shared<Outcome>();
  auto read_loop = std::make_shared<std::function<void()>>();
  *read_loop = [&, outcome, read_loop] {
    if (world.system->env().now() > sim::Seconds(4)) return;
    reader->ExecuteReadOnly({kx, ky}, [outcome, read_loop,
                                       read_pair = std::pair<Key, Key>{kx,
                                                                       ky}](
                                          core::RoResult r) {
      if (r.status.ok()) {
        ++outcome->reads;
        const auto& x = r.values[read_pair.first];
        const auto& y = r.values[read_pair.second];
        if (x.has_value() && y.has_value()) {
          std::string xs = ToString(*x);
          std::string ys = ToString(*y);
          if ((xs.starts_with("v") || ys.starts_with("v")) && xs != ys) {
            ++outcome->torn;
          }
        }
        if (r.rounds > 1) ++outcome->two_round;
        if (r.rounds > outcome->max_rounds) outcome->max_rounds = r.rounds;
      }
      (*read_loop)();
    });
  };

  world.system->env().Schedule(sim::Millis(30), [&] {
    (*write_loop)();
    (*read_loop)();
  });
  world.system->env().RunUntil(sim::Seconds(8));
  return *outcome;
}

}  // namespace

int main() {
  PrintHeader("Ablation: dependency tracking on/off (Figure 1 anomaly)");
  std::printf("%-28s %8s %8s %10s %10s\n", "variant", "reads", "torn",
              "2-round", "max-rounds");
  for (uint64_t seed : {42ull, 43ull, 44ull}) {
    Outcome full = RunOne(/*verify=*/true, /*strict=*/false, seed);
    Outcome merkle_only = RunOne(/*verify=*/false, /*strict=*/false, seed);
    Outcome strict = RunOne(/*verify=*/true, /*strict=*/true, seed);
    std::printf("seed %llu\n", static_cast<unsigned long long>(seed));
    std::printf("  %-26s %8d %8d %10d %10d\n", "TransEdge (paper)",
                full.reads, full.torn, full.two_round, full.max_rounds);
    std::printf("  %-26s %8d %8d %10d %10d\n", "Merkle-only (no Alg. 2)",
                merkle_only.reads, merkle_only.torn, merkle_only.two_round,
                merkle_only.max_rounds);
    std::printf("  %-26s %8d %8d %10d %10d\n", "Strict fixpoint (ext.)",
                strict.reads, strict.torn, strict.two_round,
                strict.max_rounds);
  }
  return 0;
}
