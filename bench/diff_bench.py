#!/usr/bin/env python3
"""Compare two BENCH_smoke.json files and flag metric regressions.

Usage: bench/diff_bench.py BASELINE.json CURRENT.json [--threshold 0.10]
                           [--include-micro]

Walks both documents, pairs up numeric leaf metrics by their structural
path (list elements are keyed by their identifying fields, e.g.
``pipeline_shards=4`` or ``consensus=linear_vote``, so reordering or
adding points never misaligns the comparison), and classifies each
metric's direction by its name:

  higher-is-better:  *tps*, *throughput*, *completed*, *ops*
  lower-is-better:   *latency*, *_ms, *_us, *_ns, *msgs*, *rounds*,
                     *aborted*, *failures*

A metric that moved in the bad direction by more than ``--threshold``
(relative) is a regression: the script prints a table of every compared
metric and exits 1 if any regressed. Metrics present in only one file
are reported but never fail the run (benches come and go). The "micro"
subtree is host-time (machine-dependent) and is skipped unless
--include-micro is given; everything else is simulated time and
deterministic for a given seed, so cross-machine comparison is exact.
"""

import argparse
import json
import sys

HIGHER_BETTER = ("tps", "throughput", "completed", "ops")
LOWER_BETTER = ("latency", "_ms", "_us", "_ns", "msgs", "rounds", "aborted",
                "failures")

# Keys whose string/int values identify a data point rather than measure
# it; they become part of the path when flattening list elements.
def is_identifier(key, value):
    return isinstance(value, (str, bool)) or (
        isinstance(value, int) and direction_of(key) is None)


def direction_of(key):
    k = key.lower()
    if any(tag in k for tag in HIGHER_BETTER):
        return "higher"
    if any(tag in k for tag in LOWER_BETTER):
        return "lower"
    return None


def flatten(node, path, out, include_micro):
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "micro" and not include_micro and not path:
                continue
            flatten(value, path + (key,), out, include_micro)
    elif isinstance(node, list):
        for index, element in enumerate(node):
            if isinstance(element, dict):
                ident = tuple(
                    f"{k}={v}" for k, v in sorted(element.items())
                    if is_identifier(k, v))
                flatten(element, path + (ident or (f"[{index}]",)), out,
                        include_micro)
            else:
                flatten(element, path + (f"[{index}]",), out, include_micro)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = path[-1] if path else ""
        if direction_of(key) is not None:
            out["/".join(str(p) for p in path)] = float(node)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two smoke-bench JSON files for regressions.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold (default 0.10)")
    parser.add_argument("--include-micro", action="store_true",
                        help="also compare the host-time micro benches")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_metrics, cur_metrics = {}, {}
    flatten(baseline, (), base_metrics, args.include_micro)
    flatten(current, (), cur_metrics, args.include_micro)

    rows = []
    regressions = []
    for path in sorted(set(base_metrics) | set(cur_metrics)):
        old = base_metrics.get(path)
        new = cur_metrics.get(path)
        if old is None or new is None:
            rows.append((path, old, new, None, "only-one-side"))
            continue
        direction = direction_of(path.rsplit("/", 1)[-1])
        if old == 0:
            delta = 0.0 if new == 0 else float("inf")
        else:
            delta = (new - old) / abs(old)
        bad = (direction == "higher" and delta < -args.threshold) or (
            direction == "lower" and delta > args.threshold)
        rows.append((path, old, new, delta, "REGRESSED" if bad else "ok"))
        if bad:
            regressions.append(path)

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  status")
    for path, old, new, delta, status in rows:
        old_s = f"{old:.1f}" if old is not None else "-"
        new_s = f"{new:.1f}" if new is not None else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{path:<{width}}  {old_s:>12}  {new_s:>12}  {delta_s:>8}  "
              f"{status}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for path in regressions:
            print(f"  {path}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"({sum(1 for r in rows if r[4] == 'ok')} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
