// Figure 12: distributed read-write throughput as additional latency is
// injected between clusters (0-500 ms). Unlike read-only transactions
// (Figure 8), the 2PC commit path crosses clusters several times, so
// throughput collapses as the links slow down.

#include "bench_common.h"

using namespace transedge;
using namespace transedge::bench;

namespace {

double RunOne(sim::Time added, size_t batch_size, uint64_t seed) {
  BenchSetup setup = BenchSetup::PaperDefaults(seed);
  setup.config.max_batch_size = batch_size;
  setup.env_opts.inter_site_latency += added;
  setup.workload.num_keys = 1000000;  // Paper key count; no preload.
  setup.config.merkle_depth = 16;  // Keep buckets small at 100k keys.
  World world(setup, /*preload=*/false);

  workload::ClosedLoopRunner runner(
      world.system.get(), 30,
      [&](Rng* rng) { return world.plans->MakeReadWrite(5, 3, 5, rng); },
      workload::RoMode::kTransEdge, seed ^ 0x77,
      /*concurrency=*/static_cast<int>(batch_size / 25));
  runner.Start(sim::Millis(1500), sim::Millis(3500));
  runner.RunToCompletion(sim::Seconds(2));
  return runner.ThroughputTps();
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 12: distributed read-write throughput vs added latency");
  std::printf("%-12s %12s %12s\n", "added(ms)", "b=900", "b=2500");
  for (sim::Time added :
       {sim::Millis(0), sim::Millis(20), sim::Millis(70), sim::Millis(150),
        sim::Millis(300), sim::Millis(500)}) {
    std::printf("%-12lld", static_cast<long long>(added / sim::kMillisecond));
    for (size_t batch : {900u, 2500u}) {
      std::printf(" %12.0f", RunOne(added, batch, 42));
    }
    std::printf("\n");
  }
  return 0;
}
